// Command bleaf-bench turns `go test -bench` output into the
// BENCH_step.json perf-trajectory record: it reads benchmark result
// lines on stdin, aggregates repeated runs of the same benchmark
// (-count=N) by keeping the minimum ns/op (the least-noise estimate of
// the true cost on a time-shared machine), the sample standard
// deviation of ns/op across the repetitions (so a flat scaling curve
// can be told apart from noise), and the maximum allocs/op (the
// conservative regression bound). The record is a JSON object
//
//	{"env": {...}, "step_ns_per_el": N, "benchmarks": {name: {ns_op, stddev_ns, allocs_op, runs, ns_per_el}}}
//
// where env captures the machine the numbers were taken on: go
// version, GOOS/GOARCH, CPU count and GOMAXPROCS. Benchmarks that
// report the per-element custom metric (b.ReportMetric(..., "ns/el"))
// carry it per entry, and the best of them is promoted to the
// top-level step_ns_per_el headline — the repo's single-number
// step-path trajectory, gated by -compare like any ns/op. Records
// written by older versions (a flat name → entry map, no env or
// headline) are still read.
//
// Usage:
//
//	go test -bench 'BenchmarkLagrangianStep' -benchmem -count=5 . | bleaf-bench -o BENCH_step.json
//	bleaf-bench -compare old.json new.json          # exit 1 on regression
//
// With -merge, entries already present in the -o file are loaded first
// and the new results overlaid on top (same name → replaced, new name →
// added), so a bench run that adds an axis — say BenchmarkParallelStep
// gaining a ranks dimension — extends the record instead of erasing the
// benchmarks it didn't re-run. The env block always describes the
// current run.
//
// With -compare, the two records are diffed benchmark by benchmark: a
// name whose ns/op grew by more than -threshold (fraction, default
// 0.05) or whose allocs/op grew at all is a regression, and any
// regression makes the exit status 1 — `make bench-compare` wires this
// as the perf gate against the committed BENCH_step.json.
//
// Names are recorded exactly as go test emits them (including any
// GOMAXPROCS suffix): stripping the "-N" suffix would collide with
// sub-benchmark names that legitimately end in "-N" ("threads-4") on
// single-core machines, where go test appends no suffix at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// resultLine matches e.g.
//
//	BenchmarkLagrangianStep-8   50   2715986 ns/op   0 B/op   0 allocs/op
//	BenchmarkStepThreads/threads-4   20   123 ns/op
var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

// nsPerElField matches the per-element custom metric the step
// benchmarks report (b.ReportMetric(..., "ns/el")).
var nsPerElField = regexp.MustCompile(`([0-9.]+) ns/el`)

// Entry is one benchmark's aggregated record.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	StdDevNs float64 `json:"stddev_ns"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
	// NsPerEl is the benchmark's per-element step cost where reported
	// (minimum across repetitions, like NsOp); 0 when the benchmark
	// has no per-element metric.
	NsPerEl float64 `json:"ns_per_el,omitempty"`

	// Accumulators for the running stddev; unexported so they never
	// reach the JSON record.
	sum, sumsq float64
}

// Env describes the machine a record was taken on.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Record is the on-disk schema: environment metadata, the headline
// metric, and the benchmark map.
type Record struct {
	Env Env `json:"env"`
	// StepNsPerEl is the headline: the best (minimum) per-element step
	// cost across every benchmark that reports the ns/el metric — the
	// repo's single-number step-path trajectory. Derived from
	// Benchmarks at write time, so merges recompute it; -compare gates
	// on it like on any ns/op, at the same threshold.
	StepNsPerEl float64           `json:"step_ns_per_el,omitempty"`
	Benchmarks  map[string]*Entry `json:"benchmarks"`
}

// headline returns the minimum reported ns/el across entries (0 when
// no benchmark reports the metric).
func headline(entries map[string]*Entry) float64 {
	best := 0.0
	for _, e := range entries {
		if e.NsPerEl > 0 && (best == 0 || e.NsPerEl < best) {
			best = e.NsPerEl
		}
	}
	return best
}

func currentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	merge := flag.Bool("merge", false, "keep entries already in the -o file that this run does not replace")
	compare := flag.Bool("compare", false, "compare two record files (old new); exit 1 on regression")
	threshold := flag.Float64("threshold", 0.05, "ns/op growth fraction that counts as a regression under -compare")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bleaf-bench: -compare needs exactly two record files: old new")
			os.Exit(2)
		}
		regressions, err := compareRecords(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	entries, err := aggregate(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "bleaf-bench: no benchmark results on stdin")
		os.Exit(1)
	}
	if *merge {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "bleaf-bench: -merge requires -o")
			os.Exit(1)
		}
		if err := mergePrevious(*out, entries); err != nil {
			fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
			os.Exit(1)
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Record{Env: currentEnv(), StepNsPerEl: headline(entries), Benchmarks: entries}); err != nil {
		fmt.Fprintln(os.Stderr, "bleaf-bench:", err)
		os.Exit(1)
	}
	if *out != "" {
		names := make([]string, 0, len(entries))
		for n := range entries {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e := entries[n]
			fmt.Printf("%-48s %14.0f ns/op ±%-10.0f %6.0f allocs/op (%d runs)\n",
				n, e.NsOp, e.StdDevNs, e.AllocsOp, e.Runs)
		}
	}
}

// loadRecord reads a record file in either schema: the current
// {env, benchmarks} object or the legacy flat name → entry map.
func loadRecord(path string) (*Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err == nil && rec.Benchmarks != nil {
		return &rec, nil
	}
	var flat map[string]*Entry
	if err := json.Unmarshal(raw, &flat); err != nil || len(flat) == 0 {
		return nil, fmt.Errorf("%s is not a benchmark record", path)
	}
	// Entries in a legacy flat file are benchmarks, but any junk JSON
	// object would also parse: require ns_op to be present somewhere.
	ok := false
	for _, e := range flat {
		if e != nil && e.NsOp > 0 {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("%s is not a benchmark record", path)
	}
	return &Record{Benchmarks: flat}, nil
}

// mergePrevious folds entries from an existing record file into the
// freshly aggregated set. Fresh results win name collisions; a missing
// file is not an error (first run with -merge behaves like plain -o).
func mergePrevious(path string, entries map[string]*Entry) error {
	prev, err := loadRecord(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for name, e := range prev.Benchmarks {
		if _, ok := entries[name]; !ok {
			entries[name] = e
		}
	}
	return nil
}

// compareRecords diffs two records and reports the number of
// regressions: benchmarks whose ns/op grew by more than threshold
// (fractional) or whose allocs/op grew at all. Benchmarks present in
// only one record are listed but never count as regressions — axes
// come and go as the suite evolves.
func compareRecords(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	oldRec, err := loadRecord(oldPath)
	if err != nil {
		return 0, err
	}
	newRec, err := loadRecord(newPath)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(newRec.Benchmarks))
	for n := range newRec.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-48s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, n := range names {
		ne := newRec.Benchmarks[n]
		oe, ok := oldRec.Benchmarks[n]
		if !ok {
			fmt.Fprintf(w, "%-48s %14s %14.0f %9s\n", n, "-", ne.NsOp, "new")
			continue
		}
		delta := (ne.NsOp - oe.NsOp) / oe.NsOp
		verdict := ""
		if delta > threshold {
			verdict = "  REGRESSION"
			regressions++
		} else if delta < -threshold {
			verdict = "  improved"
		}
		if ne.AllocsOp > oe.AllocsOp {
			verdict += fmt.Sprintf("  ALLOCS %g -> %g", oe.AllocsOp, ne.AllocsOp)
			regressions++
		}
		fmt.Fprintf(w, "%-48s %14.0f %14.0f %+8.1f%%%s\n", n, oe.NsOp, ne.NsOp, 100*delta, verdict)
	}
	for n := range oldRec.Benchmarks {
		if _, ok := newRec.Benchmarks[n]; !ok {
			fmt.Fprintf(w, "%-48s %14.0f %14s %9s\n", n, oldRec.Benchmarks[n].NsOp, "-", "gone")
		}
	}
	// The headline gates at the same threshold. Recomputed from the
	// entries rather than trusting the stored field, so a stale or
	// hand-edited step_ns_per_el cannot dodge (or fake) the gate.
	oh, nh := headline(oldRec.Benchmarks), headline(newRec.Benchmarks)
	if oh > 0 && nh > 0 {
		delta := (nh - oh) / oh
		verdict := ""
		if delta > threshold {
			verdict = "  REGRESSION"
			regressions++
		} else if delta < -threshold {
			verdict = "  improved"
		}
		fmt.Fprintf(w, "%-48s %14.2f %14.2f %+8.1f%%%s\n", "step_ns_per_el (headline)", oh, nh, 100*delta, verdict)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d regression(s) beyond %.0f%% threshold\n", regressions, 100*threshold)
	}
	return regressions, nil
}

func aggregate(sc *bufio.Scanner) (map[string]*Entry, error) {
	entries := map[string]*Entry{}
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		allocs := 0.0
		if am := allocsField.FindStringSubmatch(m[4]); am != nil {
			allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		nsel := 0.0
		if nm := nsPerElField.FindStringSubmatch(m[4]); nm != nil {
			nsel, _ = strconv.ParseFloat(nm[1], 64)
		}
		e, ok := entries[name]
		if !ok {
			entries[name] = &Entry{NsOp: ns, AllocsOp: allocs, NsPerEl: nsel, Runs: 1, sum: ns, sumsq: ns * ns}
			continue
		}
		if ns < e.NsOp {
			e.NsOp = ns
		}
		if allocs > e.AllocsOp {
			e.AllocsOp = allocs
		}
		if nsel > 0 && (e.NsPerEl == 0 || nsel < e.NsPerEl) {
			e.NsPerEl = nsel
		}
		e.Runs++
		e.sum += ns
		e.sumsq += ns * ns
		// Sample standard deviation over the repetitions seen so far
		// (0 for a single run); clamp the cancellation residue.
		n := float64(e.Runs)
		varr := (e.sumsq - e.sum*e.sum/n) / (n - 1)
		if varr < 0 {
			varr = 0
		}
		e.StdDevNs = math.Sqrt(varr)
	}
	return entries, sc.Err()
}
