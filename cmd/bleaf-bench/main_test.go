package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	in := `goos: linux
BenchmarkLagrangianStep-8   	      50	   2715986 ns/op	       0 B/op	       0 allocs/op
BenchmarkLagrangianStep-8   	      50	   2600000 ns/op	       0 B/op	       0 allocs/op
BenchmarkStepThreads/threads-4   	      20	    900000 ns/op
BenchmarkStepThreads/threads-1   	      20	   1800000 ns/op
PASS
`
	got, err := aggregate(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3: %v", len(got), got)
	}
	e := got["BenchmarkLagrangianStep-8"]
	if e == nil || e.NsOp != 2600000 || e.AllocsOp != 0 || e.Runs != 2 {
		t.Fatalf("LagrangianStep entry wrong: %+v", e)
	}
	// Sample stddev of {2715986, 2600000} is |diff|/sqrt(2).
	want := math.Abs(2715986-2600000) / math.Sqrt2
	if math.Abs(e.StdDevNs-want) > 1 {
		t.Fatalf("stddev %v, want %v", e.StdDevNs, want)
	}
	// Sub-benchmarks ending in -N must stay distinct.
	if got["BenchmarkStepThreads/threads-4"] == nil || got["BenchmarkStepThreads/threads-1"] == nil {
		t.Fatalf("thread sub-benchmarks merged: %v", got)
	}
	if got["BenchmarkStepThreads/threads-4"].NsOp != 900000 {
		t.Fatalf("threads-4 ns/op wrong: %+v", got["BenchmarkStepThreads/threads-4"])
	}
	// A single repetition has no spread.
	if got["BenchmarkStepThreads/threads-4"].StdDevNs != 0 {
		t.Fatalf("single-run stddev %v, want 0", got["BenchmarkStepThreads/threads-4"].StdDevNs)
	}
}

func TestEntryJSONOmitsAccumulators(t *testing.T) {
	raw, err := json.Marshal(&Entry{NsOp: 1, Runs: 3, sum: 3, sumsq: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "sum") {
		t.Fatalf("accumulators leaked into JSON: %s", raw)
	}
	for _, field := range []string{"ns_op", "stddev_ns", "allocs_op", "runs"} {
		if !strings.Contains(string(raw), field) {
			t.Fatalf("field %s missing from JSON: %s", field, raw)
		}
	}
}

func TestCurrentEnvPopulated(t *testing.T) {
	env := currentEnv()
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" ||
		env.NumCPU < 1 || env.GOMAXPROCS < 1 {
		t.Fatalf("env not populated: %+v", env)
	}
}

func writeRecord(t *testing.T, path string, rec Record) {
	t.Helper()
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreviousKeepsOldAxes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_step.json")
	writeRecord(t, path, Record{Env: currentEnv(), Benchmarks: map[string]*Entry{
		"BenchmarkLagrangianStep-8":      {NsOp: 2600000, Runs: 5},
		"BenchmarkStepThreads/threads-4": {NsOp: 900000, Runs: 5},
	}})
	// A later bench run re-measures one old name and adds a new axis.
	entries := map[string]*Entry{
		"BenchmarkStepThreads/threads-4":           {NsOp: 850000, Runs: 5},
		"BenchmarkParallelStep/ranks-4/overlap-on": {NsOp: 120000, Runs: 5},
	}
	if err := mergePrevious(path, entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3: %v", len(entries), entries)
	}
	if e := entries["BenchmarkLagrangianStep-8"]; e == nil || e.NsOp != 2600000 {
		t.Fatalf("old-only entry lost: %+v", e)
	}
	if e := entries["BenchmarkStepThreads/threads-4"]; e == nil || e.NsOp != 850000 {
		t.Fatalf("re-measured entry not replaced: %+v", e)
	}
	if entries["BenchmarkParallelStep/ranks-4/overlap-on"] == nil {
		t.Fatal("new axis missing")
	}
}

// Records written before the env/stddev schema (a flat name → entry
// map) must still merge.
func TestMergePreviousReadsLegacySchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_step.json")
	old := `{
  "BenchmarkLagrangianStep-8": {"ns_op": 2600000, "allocs_op": 0, "runs": 5}
}`
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	entries := map[string]*Entry{"BenchmarkNew": {NsOp: 1, Runs: 1}}
	if err := mergePrevious(path, entries); err != nil {
		t.Fatal(err)
	}
	if e := entries["BenchmarkLagrangianStep-8"]; e == nil || e.NsOp != 2600000 {
		t.Fatalf("legacy entry lost: %+v", e)
	}
}

func TestMergePreviousMissingFileIsFine(t *testing.T) {
	entries := map[string]*Entry{"BenchmarkX": {NsOp: 1, Runs: 1}}
	if err := mergePrevious(filepath.Join(t.TempDir(), "absent.json"), entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries mutated: %v", entries)
	}
}

func TestMergePreviousRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"bad.json":   "not json",
		"empty.json": "{}",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := mergePrevious(path, map[string]*Entry{}); err == nil {
			t.Fatalf("%s accepted as a record", name)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	got, err := aggregate(bufio.NewScanner(strings.NewReader("no benchmarks here\n")))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestCompareRecords(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeRecord(t, oldPath, Record{Benchmarks: map[string]*Entry{
		"BenchmarkA":    {NsOp: 1000, AllocsOp: 0, Runs: 5},
		"BenchmarkB":    {NsOp: 1000, AllocsOp: 0, Runs: 5},
		"BenchmarkC":    {NsOp: 1000, AllocsOp: 0, Runs: 5},
		"BenchmarkGone": {NsOp: 1, Runs: 1},
	}})
	writeRecord(t, newPath, Record{Benchmarks: map[string]*Entry{
		"BenchmarkA":   {NsOp: 1200, AllocsOp: 0, Runs: 5}, // +20%: regression
		"BenchmarkB":   {NsOp: 700, AllocsOp: 0, Runs: 5},  // improvement
		"BenchmarkC":   {NsOp: 1030, AllocsOp: 2, Runs: 5}, // allocs regression
		"BenchmarkNew": {NsOp: 1, Runs: 1},
	}})
	var buf bytes.Buffer
	n, err := compareRecords(&buf, oldPath, newPath, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("got %d regressions, want 2:\n%s", n, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "improved", "ALLOCS 0 -> 2", "new", "gone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
	// A looser threshold forgives the ns/op growth but not the allocs.
	buf.Reset()
	n, err = compareRecords(&buf, oldPath, newPath, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("got %d regressions at 50%% threshold, want 1 (allocs):\n%s", n, buf.String())
	}
}

// The committed BENCH_step.json compared against itself is clean — the
// make bench-compare gate's identity case.
func TestCompareRecordsIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	writeRecord(t, path, Record{Env: currentEnv(), Benchmarks: map[string]*Entry{
		"BenchmarkA": {NsOp: 1000, Runs: 5},
	}})
	var buf bytes.Buffer
	n, err := compareRecords(&buf, path, path, 0.05)
	if err != nil || n != 0 {
		t.Fatalf("identity compare: %d regressions, err %v", n, err)
	}
}

// Step benchmarks report a per-element metric; the aggregator keeps
// the minimum across repetitions and promotes the best to the record
// headline.
func TestAggregateNsPerEl(t *testing.T) {
	in := `BenchmarkStepGrid/reorder=none/layout=soa-8     100   400000 ns/op   110.5 ns/el   0 allocs/op
BenchmarkStepGrid/reorder=none/layout=soa-8     100   420000 ns/op   115.0 ns/el   0 allocs/op
BenchmarkStepGrid/reorder=hilbert/layout=aos-8  100   300000 ns/op    82.3 ns/el   0 allocs/op
BenchmarkLagrangianStep-8                        50  2600000 ns/op   0 B/op   0 allocs/op
`
	got, err := aggregate(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if e := got["BenchmarkStepGrid/reorder=none/layout=soa-8"]; e == nil || e.NsPerEl != 110.5 {
		t.Fatalf("ns/el not aggregated as min: %+v", e)
	}
	if e := got["BenchmarkLagrangianStep-8"]; e == nil || e.NsPerEl != 0 {
		t.Fatalf("metric-free benchmark gained ns/el: %+v", e)
	}
	if h := headline(got); h != 82.3 {
		t.Fatalf("headline %g, want best point 82.3", h)
	}
}

// The headline gates in -compare at the ns/op threshold: a slower best
// point is a regression, a faster one an improvement, and records
// without the metric (legacy) skip the gate.
func TestCompareGatesHeadline(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeRecord(t, oldPath, Record{Benchmarks: map[string]*Entry{
		"BenchmarkStepGrid/reorder=hilbert/layout=aos-8": {NsOp: 1000, Runs: 5, NsPerEl: 80},
	}})
	writeRecord(t, newPath, Record{Benchmarks: map[string]*Entry{
		"BenchmarkStepGrid/reorder=hilbert/layout=aos-8": {NsOp: 1030, Runs: 5, NsPerEl: 100},
	}})
	var buf bytes.Buffer
	n, err := compareRecords(&buf, oldPath, newPath, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(buf.String(), "step_ns_per_el") {
		t.Fatalf("headline regression not gated (%d):\n%s", n, buf.String())
	}
	// Improvement direction: no regression, marked improved.
	buf.Reset()
	n, err = compareRecords(&buf, newPath, oldPath, 0.05)
	if err != nil || n != 0 {
		t.Fatalf("headline improvement flagged as regression (%d, %v)", n, err)
	}
	if !strings.Contains(buf.String(), "improved") {
		t.Fatalf("improvement not reported:\n%s", buf.String())
	}
	// Legacy record without the metric: gate skipped, no crash.
	legacyPath := filepath.Join(dir, "legacy.json")
	writeRecord(t, legacyPath, Record{Benchmarks: map[string]*Entry{
		"BenchmarkStepGrid/reorder=hilbert/layout=aos-8": {NsOp: 1000, Runs: 5},
	}})
	buf.Reset()
	if n, err = compareRecords(&buf, legacyPath, newPath, 0.05); err != nil || n != 0 {
		t.Fatalf("legacy headline compare: %d regressions, err %v\n%s", n, err, buf.String())
	}
}

// A hand-edited headline cannot dodge the gate: compare recomputes it
// from the entries.
func TestCompareHeadlineRecomputed(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeRecord(t, oldPath, Record{StepNsPerEl: 80, Benchmarks: map[string]*Entry{
		"BenchmarkStepGrid/p-8": {NsOp: 1000, Runs: 5, NsPerEl: 80},
	}})
	// The stored headline claims 80 but the entries say 120.
	writeRecord(t, newPath, Record{StepNsPerEl: 80, Benchmarks: map[string]*Entry{
		"BenchmarkStepGrid/p-8": {NsOp: 1000, Runs: 5, NsPerEl: 120},
	}})
	var buf bytes.Buffer
	n, err := compareRecords(&buf, oldPath, newPath, 0.05)
	if err != nil || n != 1 {
		t.Fatalf("forged headline slipped the gate: %d regressions, err %v\n%s", n, err, buf.String())
	}
}

// Merging the same results twice is a no-op: the reorder/layout axes
// (and every other axis) land once, and a re-run of the identical
// bench output leaves the record byte-identical apart from env.
func TestMergeIdempotent(t *testing.T) {
	in := `BenchmarkStepGrid/reorder=none/layout=soa-8     100   400000 ns/op   110.5 ns/el   0 allocs/op
BenchmarkStepGrid/reorder=hilbert/layout=aos-8  100   300000 ns/op    82.3 ns/el   0 allocs/op
`
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_step.json")

	first, err := aggregate(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mergePrevious(path, first); err != nil {
		t.Fatal(err)
	}
	writeRecord(t, path, Record{Env: currentEnv(), StepNsPerEl: headline(first), Benchmarks: first})

	second, err := aggregate(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mergePrevious(path, second); err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first) {
		t.Fatalf("re-merge changed the axis count: %d vs %d", len(second), len(first))
	}
	for name, e1 := range first {
		e2 := second[name]
		if e2 == nil || e1.NsOp != e2.NsOp || e1.NsPerEl != e2.NsPerEl || e1.AllocsOp != e2.AllocsOp || e1.Runs != e2.Runs {
			t.Fatalf("%s drifted across an idempotent merge: %+v vs %+v", name, e1, e2)
		}
	}
	if headline(second) != headline(first) {
		t.Fatalf("headline drifted: %g vs %g", headline(second), headline(first))
	}
}
