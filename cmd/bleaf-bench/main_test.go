package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	in := `goos: linux
BenchmarkLagrangianStep-8   	      50	   2715986 ns/op	       0 B/op	       0 allocs/op
BenchmarkLagrangianStep-8   	      50	   2600000 ns/op	       0 B/op	       0 allocs/op
BenchmarkStepThreads/threads-4   	      20	    900000 ns/op
BenchmarkStepThreads/threads-1   	      20	   1800000 ns/op
PASS
`
	got, err := aggregate(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3: %v", len(got), got)
	}
	e := got["BenchmarkLagrangianStep-8"]
	if e == nil || e.NsOp != 2600000 || e.AllocsOp != 0 || e.Runs != 2 {
		t.Fatalf("LagrangianStep entry wrong: %+v", e)
	}
	// Sub-benchmarks ending in -N must stay distinct.
	if got["BenchmarkStepThreads/threads-4"] == nil || got["BenchmarkStepThreads/threads-1"] == nil {
		t.Fatalf("thread sub-benchmarks merged: %v", got)
	}
	if got["BenchmarkStepThreads/threads-4"].NsOp != 900000 {
		t.Fatalf("threads-4 ns/op wrong: %+v", got["BenchmarkStepThreads/threads-4"])
	}
}

func TestAggregateEmpty(t *testing.T) {
	got, err := aggregate(bufio.NewScanner(strings.NewReader("no benchmarks here\n")))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
