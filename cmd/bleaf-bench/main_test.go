package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	in := `goos: linux
BenchmarkLagrangianStep-8   	      50	   2715986 ns/op	       0 B/op	       0 allocs/op
BenchmarkLagrangianStep-8   	      50	   2600000 ns/op	       0 B/op	       0 allocs/op
BenchmarkStepThreads/threads-4   	      20	    900000 ns/op
BenchmarkStepThreads/threads-1   	      20	   1800000 ns/op
PASS
`
	got, err := aggregate(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3: %v", len(got), got)
	}
	e := got["BenchmarkLagrangianStep-8"]
	if e == nil || e.NsOp != 2600000 || e.AllocsOp != 0 || e.Runs != 2 {
		t.Fatalf("LagrangianStep entry wrong: %+v", e)
	}
	// Sub-benchmarks ending in -N must stay distinct.
	if got["BenchmarkStepThreads/threads-4"] == nil || got["BenchmarkStepThreads/threads-1"] == nil {
		t.Fatalf("thread sub-benchmarks merged: %v", got)
	}
	if got["BenchmarkStepThreads/threads-4"].NsOp != 900000 {
		t.Fatalf("threads-4 ns/op wrong: %+v", got["BenchmarkStepThreads/threads-4"])
	}
}

func TestMergePreviousKeepsOldAxes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_step.json")
	old := `{
  "BenchmarkLagrangianStep-8": {"ns_op": 2600000, "allocs_op": 0, "runs": 5},
  "BenchmarkStepThreads/threads-4": {"ns_op": 900000, "allocs_op": 0, "runs": 5}
}`
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	// A later bench run re-measures one old name and adds a new axis.
	entries := map[string]*Entry{
		"BenchmarkStepThreads/threads-4":           {NsOp: 850000, Runs: 5},
		"BenchmarkParallelStep/ranks-4/overlap-on": {NsOp: 120000, Runs: 5},
	}
	if err := mergePrevious(path, entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3: %v", len(entries), entries)
	}
	if e := entries["BenchmarkLagrangianStep-8"]; e == nil || e.NsOp != 2600000 {
		t.Fatalf("old-only entry lost: %+v", e)
	}
	if e := entries["BenchmarkStepThreads/threads-4"]; e == nil || e.NsOp != 850000 {
		t.Fatalf("re-measured entry not replaced: %+v", e)
	}
	if entries["BenchmarkParallelStep/ranks-4/overlap-on"] == nil {
		t.Fatal("new axis missing")
	}
}

func TestMergePreviousMissingFileIsFine(t *testing.T) {
	entries := map[string]*Entry{"BenchmarkX": {NsOp: 1, Runs: 1}}
	if err := mergePrevious(filepath.Join(t.TempDir(), "absent.json"), entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries mutated: %v", entries)
	}
}

func TestMergePreviousRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergePrevious(path, map[string]*Entry{}); err == nil {
		t.Fatal("garbage record accepted")
	}
}

func TestAggregateEmpty(t *testing.T) {
	got, err := aggregate(bufio.NewScanner(strings.NewReader("no benchmarks here\n")))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
