// Command bleaf-served is the BookLeaf simulation service: a
// long-running daemon that accepts input decks over HTTP, multiplexes
// the runs over a warm pool fleet, and serves results, progress and
// metrics back as JSON.
//
//	bleaf-served -addr :8080 -workers 4 -threads 2
//
//	# submit a deck, poll it, fetch the result
//	curl -d @decks/sod.deck localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j000001
//	curl localhost:8080/v1/jobs/j000001/metrics
//	curl -X DELETE localhost:8080/v1/jobs/j000001
//
// Priorities: a deck submitted with "X-Priority: 10" outranks the
// default 0; when the fleet is full, a strictly higher-priority
// submission preempts the weakest running job through an in-memory
// checkpoint — the evicted job re-queues and later resumes from the
// exact step it was parked at, bit for bit.
//
// Admission control: every deck's cost is predicted from its stated
// dimensions (internal/machine); when the predicted backlog would
// exceed -budget seconds the submission is rejected with 429 and a
// Retry-After estimating the drain time. Clients identify themselves
// with "X-Client: alice" (default "anon"); one client's backlog is
// further capped at -client-budget seconds — past it the 429 carries
// code client_over_quota instead of overloaded, and other clients'
// decks still admit.
//
// Durability: with -state-dir the daemon journals every submission and
// outcome to an fsynced NDJSON log in that directory, spills preemption
// checkpoints next to it (plus a periodic spill of long legs every
// -spill-every, and a final spill on graceful shutdown), and on restart
// replays it all — queued decks re-admit, interrupted jobs resume
// bitwise from their last spill, and the learned calibration scale
// survives the bounce.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bookleaf/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bleaf-served:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 2, "concurrent simulations (warm pool fleet size)")
		threads  = flag.Int("threads", 1, "par.Pool threads leased to each serial job")
		budget   = flag.Float64("budget", 600, "admission budget: max predicted backlog seconds")
		maxDeck  = flag.Int64("max-deck-bytes", 1<<20, "largest accepted deck body")
		snapshot = flag.Int("snapshot-every", 0, "mid-run metrics snapshot cadence in steps (0 = default)")
		maxRanks = flag.Int("max-ranks", 0, "largest deck-declared rank count admitted (0 = default)")
		maxThr   = flag.Int("max-threads", 0, "largest deck-declared thread count admitted (0 = default)")
		maxEl    = flag.Int("max-elements", 0, "largest deck mesh (nx*ny) admitted (0 = default)")
		maxTerm  = flag.Int("max-terminal-jobs", 0, "finished jobs retained for GET before eviction (0 = default)")
		stateDir = flag.String("state-dir", "", "durable state directory: journal + checkpoint spills; empty = in-memory")
		spill    = flag.Duration("spill-every", 0, "periodic checkpoint spill cadence for long-running legs (0 = 60s; requires -state-dir)")
		clientB  = flag.Float64("client-budget", 0, "per-client backlog quota in predicted seconds (0 = half of -budget; negative disables)")
	)
	flag.Parse()

	quota := *clientB
	if quota == 0 {
		quota = *budget / 2
	} else if quota < 0 {
		quota = 0
	}
	srv, err := serve.Open(serve.Options{
		Workers: *workers, Threads: *threads,
		BudgetSeconds: *budget, MaxDeckBytes: *maxDeck,
		SnapshotEvery: *snapshot,
		MaxRanks:      *maxRanks, MaxThreads: *maxThr,
		MaxElements: *maxEl, MaxTerminalJobs: *maxTerm,
		StateDir: *stateDir, SpillInterval: *spill,
		ClientBudgetSeconds: quota,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	durable := "in-memory"
	if *stateDir != "" {
		durable = "state-dir " + *stateDir
	}
	fmt.Printf("bleaf-served: listening on %s (%d worker(s) x %d thread(s), budget %.0fs, %s)\n",
		*addr, *workers, *threads, *budget, durable)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-sig:
	}
	fmt.Println("bleaf-served: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
		return err
	}
	srv.Close()
	return nil
}
