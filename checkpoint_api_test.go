package bookleaf_test

import (
	"math"
	"path/filepath"
	"testing"

	"bookleaf"
)

func TestCheckpointResumeThroughConfig(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "sod.ckpt")

	// Continuous reference run.
	ref := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 2, MaxSteps: 60})

	// First half, dumping a checkpoint at the end.
	first := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 2, MaxSteps: 30, Checkpoint: ck})
	if first.Steps != 30 {
		t.Fatalf("first leg steps = %d", first.Steps)
	}

	// Second half from the dump.
	second := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 2, MaxSteps: 60, Resume: ck})
	if second.Steps != ref.Steps {
		t.Fatalf("resumed steps %d != reference %d", second.Steps, ref.Steps)
	}
	for e := range ref.Rho {
		if second.Rho[e] != ref.Rho[e] {
			t.Fatalf("resume diverged at element %d: %v vs %v", e, second.Rho[e], ref.Rho[e])
		}
	}
	if math.Abs(second.Time-ref.Time) > 0 {
		t.Fatalf("resume time %v != reference %v", second.Time, ref.Time)
	}
}

func TestCheckpointRejectsParallel(t *testing.T) {
	if _, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 16, NY: 2, Ranks: 2, Checkpoint: "x"}); err == nil {
		t.Fatal("parallel checkpoint accepted")
	}
}

func TestResumeMissingFileFails(t *testing.T) {
	if _, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 16, NY: 2, Resume: "/nonexistent/file"}); err == nil {
		t.Fatal("missing resume file accepted")
	}
}
