package bookleaf_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bookleaf"
	"bookleaf/internal/checkpoint"
)

func TestCheckpointResumeThroughConfig(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "sod.ckpt")

	// Continuous reference run.
	ref := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 2, MaxSteps: 60})

	// First half, dumping a checkpoint at the end.
	first := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 2, MaxSteps: 30, Checkpoint: ck})
	if first.Steps != 30 {
		t.Fatalf("first leg steps = %d", first.Steps)
	}

	// Second half from the dump.
	second := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 2, MaxSteps: 60, Resume: ck})
	if second.Steps != ref.Steps {
		t.Fatalf("resumed steps %d != reference %d", second.Steps, ref.Steps)
	}
	for e := range ref.Rho {
		if second.Rho[e] != ref.Rho[e] {
			t.Fatalf("resume diverged at element %d: %v vs %v", e, second.Rho[e], ref.Rho[e])
		}
	}
	if math.Abs(second.Time-ref.Time) > 0 {
		t.Fatalf("resume time %v != reference %v", second.Time, ref.Time)
	}
}

// maxFieldDiff returns the largest |a-b| over two equal-length fields.
func maxFieldDiff(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("field lengths differ: %d vs %d", len(a), len(b))
	}
	var d float64
	for i := range a {
		d = math.Max(d, math.Abs(a[i]-b[i]))
	}
	return d
}

// Snapshots are partition-independent: a serial run to step N and a
// 4-rank run resumed from a 2-rank checkpoint at the same step must
// agree on the final state to 1e-12.
func TestCheckpointCrossesRankCounts(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "cross.ckpt")

	ref := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, MaxSteps: 40})

	leg := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, MaxSteps: 20, Ranks: 2, Checkpoint: ck})
	if leg.Steps != 20 {
		t.Fatalf("checkpoint leg steps = %d", leg.Steps)
	}
	res := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, MaxSteps: 40, Ranks: 4, Resume: ck})
	if res.Steps != ref.Steps {
		t.Fatalf("resumed steps %d != reference %d", res.Steps, ref.Steps)
	}
	if d := maxFieldDiff(t, res.Rho, ref.Rho); d > 1e-12 {
		t.Fatalf("rho differs from serial reference by %v", d)
	}
	if d := maxFieldDiff(t, res.Ein, ref.Ein); d > 1e-12 {
		t.Fatalf("ein differs from serial reference by %v", d)
	}
}

// The acceptance path: a 4-rank run checkpointed mid-run through
// CheckpointEvery, resumed at a different rank count (3, with the other
// partitioner), matches the uninterrupted run's final state to 1e-12.
func TestCheckpointMidRunResumesAtDifferentRankCount(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "mid.ckpt")

	ref := run(t, bookleaf.Config{Problem: "sod", NX: 48, NY: 4, MaxSteps: 40, Ranks: 4})

	// CheckpointEvery writes at steps 15 and 30; cap the run at 30 so
	// the final dump lands mid-way through the reference run.
	leg := run(t, bookleaf.Config{
		Problem: "sod", NX: 48, NY: 4, MaxSteps: 30, Ranks: 4,
		Checkpoint: ck, CheckpointEvery: 15,
	})
	if leg.Steps != 30 {
		t.Fatalf("checkpoint leg steps = %d", leg.Steps)
	}

	res := run(t, bookleaf.Config{
		Problem: "sod", NX: 48, NY: 4, MaxSteps: 40,
		Ranks: 3, Partitioner: "metis", Resume: ck,
	})
	if res.Steps != ref.Steps {
		t.Fatalf("resumed steps %d != reference %d", res.Steps, ref.Steps)
	}
	if d := maxFieldDiff(t, res.Rho, ref.Rho); d > 1e-12 {
		t.Fatalf("rho differs from uninterrupted run by %v", d)
	}
	if d := maxFieldDiff(t, res.Ein, ref.Ein); d > 1e-12 {
		t.Fatalf("ein differs from uninterrupted run by %v", d)
	}
	// Work/floor audits travel through the snapshot as global sums;
	// the resumed run's conservation audit must still close.
	if drift := res.EnergyDrift(); drift > 1e-10 {
		t.Fatalf("energy drift %v after cross-rank resume", drift)
	}
}

// Resume failures must surface before any ranks spawn, with a clear
// cause: missing file, truncated dump, wrong format version.
func TestResumeMissingFileFails(t *testing.T) {
	for _, ranks := range []int{1, 4} {
		_, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 16, NY: 2, Ranks: ranks, Resume: "/nonexistent/file"})
		if err == nil {
			t.Fatalf("missing resume file accepted at %d ranks", ranks)
		}
		if !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("error does not wrap the open failure: %v", err)
		}
	}
}

func TestResumeTruncatedFileFails(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "whole.ckpt")
	run(t, bookleaf.Config{Problem: "sod", NX: 16, NY: 2, MaxSteps: 10, Checkpoint: ck})

	raw, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.ckpt")
	if err := os.WriteFile(cut, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2} {
		_, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 16, NY: 2, Ranks: ranks, Resume: cut})
		if err == nil {
			t.Fatalf("truncated dump accepted at %d ranks", ranks)
		}
	}
}

func TestResumeWrongVersionFails(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "v2.ckpt")
	run(t, bookleaf.Config{Problem: "sod", NX: 16, NY: 2, MaxSteps: 10, Checkpoint: ck})

	f, err := os.Open(ck)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap.Version = 1
	old := filepath.Join(dir, "v1.ckpt")
	out, err := os.Create(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Write(out); err != nil {
		t.Fatal(err)
	}
	out.Close()

	for _, ranks := range []int{1, 2} {
		_, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 16, NY: 2, Ranks: ranks, Resume: old})
		if !errors.Is(err, checkpoint.ErrVersion) {
			t.Fatalf("version-1 dump at %d ranks: error %v does not match ErrVersion", ranks, err)
		}
	}
}

// A resume dump from a different problem or resolution is rejected up
// front regardless of rank count.
func TestResumeIdentityMismatchFails(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "sod.ckpt")
	run(t, bookleaf.Config{Problem: "sod", NX: 16, NY: 2, MaxSteps: 10, Checkpoint: ck})
	for _, ranks := range []int{1, 2} {
		if _, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 20, NY: 2, Ranks: ranks, Resume: ck}); err == nil {
			t.Fatalf("mismatched resolution accepted at %d ranks", ranks)
		}
	}
}
