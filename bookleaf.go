// Package bookleaf is a from-scratch Go implementation of BookLeaf, the
// UK Mini-App Consortium's 2-D unstructured Arbitrary Lagrangian-
// Eulerian (ALE) shock-hydrodynamics mini-application (Truby et al.,
// "BookLeaf: An Unstructured Hydrodynamics Mini-Application", 2018).
//
// The package exposes the mini-app's driver surface: configure one of
// the four standard test problems (Sod, Noh, Sedov, Saltzmann), run it
// serially, threaded ("hybrid"), or across goroutine ranks with halo
// exchanges (the paper's flat-MPI analogue), and collect per-kernel
// timings matching the paper's Table II breakdown. Lower-level pieces
// live in internal packages: the Lagrangian kernels (internal/hydro),
// the advection step (internal/ale), the mesh (internal/mesh), the
// Typhon-like communication layer (internal/typhon), domain
// decomposition (internal/partition) and the platform performance
// model (internal/machine).
//
// Quick start:
//
//	res, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 200, NY: 4})
//	if err != nil { ... }
//	fmt.Println(res.Steps, res.Time, res.Timers["getq"])
package bookleaf

import (
	"fmt"
	"math"
	"os"

	"bookleaf/internal/ale"
	"bookleaf/internal/checkpoint"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
	"bookleaf/internal/par"
	"bookleaf/internal/setup"
	"bookleaf/internal/timers"
)

// Config selects and parameterises a run. The zero value is not valid:
// Problem, NX and NY are required.
type Config struct {
	// Problem is one of "sod", "noh", "sedov", "saltzmann",
	// "waterair", or "nohdisc" (Noh on a quarter-disc mesh; NY
	// ignored).
	Problem string
	// NX, NY are the mesh resolution.
	NX, NY int
	// TEnd overrides the problem's standard end time when positive.
	TEnd float64
	// MaxSteps caps the step count when positive.
	MaxSteps int

	// ALE selects the advection mode: "" (pure Lagrangian),
	// "eulerian", or "smoothed". ALEFreq remaps every n-th step
	// (default 1).
	ALE     string
	ALEFreq int
	// FirstOrderRemap disables the limited linear reconstruction.
	FirstOrderRemap bool

	// Hourglass overrides the default control: "none", "filter",
	// "subzonal" ("" keeps the problem default).
	Hourglass string

	// Ranks is the number of goroutine ranks (the flat-MPI analogue);
	// Threads the per-rank thread count (the OpenMP analogue). Both
	// default to 1.
	Ranks, Threads int
	// Partitioner is "rcb" (default) or "metis" (the multilevel
	// graph partitioner).
	Partitioner string

	// GatherAcc switches the acceleration kernel to the race-free
	// gather formulation (ablation of the paper's OpenMP data
	// dependency).
	GatherAcc bool

	// SedovEnergy overrides the Sedov blast energy when positive.
	SedovEnergy float64

	// Checkpoint, when set, names a restart-dump file written every
	// CheckpointEvery steps (default: end of run only). Resume, when
	// set, restores a prior dump before stepping. Serial runs only.
	Checkpoint      string
	CheckpointEvery int
	Resume          string

	// HistoryEvery records a StepRecord every n steps into
	// Result.History (0 = off). Serial runs only.
	HistoryEvery int

	// testDtMin overrides the minimum-timestep abort threshold; used
	// by failure-injection tests.
	testDtMin float64
}

func (c *Config) normalise() error {
	if c.Ranks == 0 {
		c.Ranks = 1
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.ALEFreq == 0 {
		c.ALEFreq = 1
	}
	if c.Partitioner == "" {
		c.Partitioner = "rcb"
	}
	if c.Ranks < 1 || c.Threads < 1 || c.ALEFreq < 1 {
		return fmt.Errorf("bookleaf: Ranks, Threads and ALEFreq must be >= 1")
	}
	switch c.ALE {
	case "", "eulerian", "smoothed":
	default:
		return fmt.Errorf("bookleaf: unknown ALE mode %q", c.ALE)
	}
	switch c.Hourglass {
	case "", "none", "filter", "subzonal":
	default:
		return fmt.Errorf("bookleaf: unknown hourglass control %q", c.Hourglass)
	}
	switch c.Partitioner {
	case "rcb", "metis":
	default:
		return fmt.Errorf("bookleaf: unknown partitioner %q", c.Partitioner)
	}
	if c.ALE == "smoothed" && c.Ranks > 1 {
		return fmt.Errorf("bookleaf: smoothed ALE is serial-only (ghost smoothing stencils are incomplete)")
	}
	if (c.Checkpoint != "" || c.Resume != "") && c.Ranks > 1 {
		return fmt.Errorf("bookleaf: checkpoint/resume are serial-only")
	}
	return nil
}

func (c *Config) aleOptions() *ale.Options {
	switch c.ALE {
	case "eulerian":
		return &ale.Options{Mode: ale.Eulerian, FirstOrder: c.FirstOrderRemap}
	case "smoothed":
		return &ale.Options{Mode: ale.Smoothed, SmoothWeight: 0.5, FirstOrder: c.FirstOrderRemap}
	}
	return nil
}

func (c *Config) applyOverrides(opt *hydro.Options) {
	switch c.Hourglass {
	case "none":
		opt.Hourglass = hydro.HGNone
	case "filter":
		opt.Hourglass = hydro.HGFilter
	case "subzonal":
		opt.Hourglass = hydro.HGSubzonal
	}
	opt.GatherAcc = c.GatherAcc
	if c.testDtMin > 0 {
		opt.DtMin = c.testDtMin
	}
}

// Result is the outcome of a run: global final fields, per-kernel
// timings (slowest rank, i.e. the bulk-synchronous wall estimate) and
// conservation audits.
type Result struct {
	Problem        string
	NEl, NNd       int
	Ranks, Threads int

	Steps int
	Time  float64

	// Timers holds per-kernel seconds (max across ranks); TimerSum
	// the rank-summed CPU seconds; Calls the invocation counts.
	Timers   map[string]float64
	TimerSum map[string]float64
	Calls    map[string]int64

	// Final global fields (element- and node-indexed on the global
	// mesh).
	Rho, Ein, P []float64
	U, V        []float64
	X, Y        []float64

	// Mesh is the global problem mesh (initial coordinates).
	Mesh *mesh.Mesh

	// Conservation audit.
	E0, EFinal, ExternalWork float64
	// FloorEnergy is energy injected by the negative-energy floor
	// (zero on well-resolved problems).
	FloorEnergy      float64
	Mass0, MassFinal float64

	// TEnd actually used, and the problem gamma (for reference
	// solutions).
	TEnd, Gamma float64
	SedovEnergy float64

	// CommMsgs and CommWords are the total messages and float64 words
	// sent through the Typhon layer (zero for serial runs).
	CommMsgs, CommWords int64

	// History holds periodic step records when Config.HistoryEvery is
	// set.
	History []StepRecord
}

// StepRecord is one entry of the optional step history: the quantities
// BookLeaf's step log prints.
type StepRecord struct {
	Step    int
	Time    float64
	Dt      float64
	Energy  float64
	Kinetic float64
}

// EnergyDrift returns |E - E0 - W - F| / max(E0, 1e-300), the
// conservation defect accounting for piston work W and floor energy F.
func (r *Result) EnergyDrift() float64 {
	return math.Abs(r.EFinal-r.E0-r.ExternalWork-r.FloorEnergy) / math.Max(math.Abs(r.E0), 1e-300)
}

// Run executes the configured problem to completion.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	if cfg.Ranks > 1 {
		return runParallel(cfg)
	}
	return runSerial(cfg)
}

func runSerial(cfg Config) (*Result, error) {
	p, err := setup.ByName(cfg.Problem, cfg.NX, cfg.NY, cfg.SedovEnergy)
	if err != nil {
		return nil, err
	}
	cfg.applyOverrides(&p.Opt)
	s, err := p.NewState()
	if err != nil {
		return nil, err
	}
	s.Pool = par.New(cfg.Threads)

	tEnd := p.TEnd
	if cfg.TEnd > 0 {
		tEnd = cfg.TEnd
	}
	var remap *ale.Remapper
	if a := cfg.aleOptions(); a != nil {
		remap = ale.NewRemapper(*a, s)
	}

	if cfg.Resume != "" {
		f, err := os.Open(cfg.Resume)
		if err != nil {
			return nil, fmt.Errorf("bookleaf: resume: %w", err)
		}
		snap, err := checkpoint.Read(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if err := snap.Restore(s, cfg.Problem, cfg.NX, cfg.NY); err != nil {
			return nil, err
		}
	}

	writeCheckpoint := func() error {
		f, err := os.Create(cfg.Checkpoint)
		if err != nil {
			return fmt.Errorf("bookleaf: checkpoint: %w", err)
		}
		defer f.Close()
		return checkpoint.Capture(s, cfg.Problem, cfg.NX, cfg.NY).Write(f)
	}

	tm := timers.NewSet()
	hooks := &hydro.Hooks{
		ReduceDt: func(dt float64, e int) (float64, int) {
			if s.Time+dt > tEnd {
				dt = tEnd - s.Time
			}
			return dt, e
		},
	}
	res := &Result{
		Problem: p.Name, Ranks: 1, Threads: cfg.Threads,
		NEl: p.Mesh.NEl, NNd: p.Mesh.NNd,
		E0: s.TotalEnergy(), Mass0: s.TotalMass(),
		Mesh: p.Mesh, TEnd: tEnd, Gamma: p.Gamma, SedovEnergy: p.SedovEnergy,
	}
	for s.Time < tEnd-1e-12 {
		if cfg.MaxSteps > 0 && s.StepCount >= cfg.MaxSteps {
			break
		}
		if _, err := s.Step(tm, hooks); err != nil {
			return nil, fmt.Errorf("bookleaf: step %d (t=%v): %w", s.StepCount, s.Time, err)
		}
		if remap != nil && s.StepCount%cfg.ALEFreq == 0 {
			tm.Start(hydro.TimerALE)
			err := remap.Apply(s, tm, nil)
			tm.Stop(hydro.TimerALE)
			if err != nil {
				return nil, fmt.Errorf("bookleaf: remap at step %d: %w", s.StepCount, err)
			}
		}
		if cfg.Checkpoint != "" && cfg.CheckpointEvery > 0 && s.StepCount%cfg.CheckpointEvery == 0 {
			if err := writeCheckpoint(); err != nil {
				return nil, err
			}
		}
		if cfg.HistoryEvery > 0 && s.StepCount%cfg.HistoryEvery == 0 {
			res.History = append(res.History, StepRecord{
				Step: s.StepCount, Time: s.Time, Dt: s.DtPrev,
				Energy: s.TotalEnergy(), Kinetic: s.KineticEnergy(),
			})
		}
	}
	if cfg.Checkpoint != "" {
		if err := writeCheckpoint(); err != nil {
			return nil, err
		}
	}
	res.Steps = s.StepCount
	res.Time = s.Time
	res.Timers = tm.Snapshot()
	res.TimerSum = tm.Snapshot()
	res.Calls = map[string]int64{}
	for _, n := range tm.Names() {
		res.Calls[n] = tm.Count(n)
	}
	res.Rho = append([]float64(nil), s.Rho...)
	res.Ein = append([]float64(nil), s.Ein...)
	res.P = append([]float64(nil), s.P...)
	res.U = append([]float64(nil), s.U...)
	res.V = append([]float64(nil), s.V...)
	res.X = append([]float64(nil), s.X...)
	res.Y = append([]float64(nil), s.Y...)
	res.EFinal = s.TotalEnergy()
	res.ExternalWork = s.ExternalWork
	res.FloorEnergy = s.FloorEnergy
	res.MassFinal = s.TotalMass()
	return res, nil
}
