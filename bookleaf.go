// Package bookleaf is a from-scratch Go implementation of BookLeaf, the
// UK Mini-App Consortium's 2-D unstructured Arbitrary Lagrangian-
// Eulerian (ALE) shock-hydrodynamics mini-application (Truby et al.,
// "BookLeaf: An Unstructured Hydrodynamics Mini-Application", 2018).
//
// The package exposes the mini-app's driver surface: configure one of
// the four standard test problems (Sod, Noh, Sedov, Saltzmann), run it
// serially, threaded ("hybrid"), or across goroutine ranks with halo
// exchanges (the paper's flat-MPI analogue), and collect per-kernel
// timings matching the paper's Table II breakdown. Lower-level pieces
// live in internal packages: the Lagrangian kernels (internal/hydro),
// the advection step (internal/ale), the mesh (internal/mesh), the
// Typhon-like communication layer (internal/typhon), domain
// decomposition (internal/partition) and the platform performance
// model (internal/machine).
//
// Quick start:
//
//	res, err := bookleaf.Run(bookleaf.Config{Problem: "sod", NX: 200, NY: 4})
//	if err != nil { ... }
//	fmt.Println(res.Steps, res.Time, res.Timers["qforce"])
//
// The default step runs fused element passes (timer keys "qforce",
// "lagupdate"); set Config.NoFuse for the paper's eight-kernel
// breakdown ("getq", "getforce", ... — bitwise-identical fields).
package bookleaf

import (
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"bookleaf/internal/ale"
	"bookleaf/internal/checkpoint"
	"bookleaf/internal/hydro"
	"bookleaf/internal/mesh"
	"bookleaf/internal/obs"
	"bookleaf/internal/order"
	"bookleaf/internal/par"
	"bookleaf/internal/setup"
	"bookleaf/internal/supervise"
	"bookleaf/internal/timers"
	"bookleaf/internal/typhon"
)

// Config selects and parameterises a run. The zero value is not valid:
// Problem, NX and NY are required.
type Config struct {
	// Problem is one of "sod", "noh", "sedov", "saltzmann",
	// "waterair", or "nohdisc" (Noh on a quarter-disc mesh; NY
	// ignored).
	Problem string
	// NX, NY are the mesh resolution.
	NX, NY int
	// TEnd overrides the problem's standard end time when positive.
	TEnd float64
	// MaxSteps caps the step count when positive.
	MaxSteps int

	// ALE selects the advection mode: "" (pure Lagrangian),
	// "eulerian", or "smoothed". ALEFreq remaps every n-th step
	// (default 1).
	ALE     string
	ALEFreq int
	// FirstOrderRemap disables the limited linear reconstruction.
	FirstOrderRemap bool

	// Hourglass overrides the default control: "none", "filter",
	// "subzonal" ("" keeps the problem default).
	Hourglass string

	// Ranks is the number of goroutine ranks (the flat-MPI analogue);
	// Threads the per-rank thread count (the OpenMP analogue). Both
	// default to 1.
	Ranks, Threads int
	// Partitioner is "rcb" (default) or "metis" (the multilevel
	// graph partitioner).
	Partitioner string
	// Reorder renumbers the global mesh for cache locality before any
	// partitioning: "none" (default — the generator's row-major order,
	// bitwise the pre-reorder behaviour), "hilbert" (space-filling
	// curve over element centroids) or "rcm" (reverse Cuthill-McKee on
	// the dual graph). Results, checkpoints and dumps stay in canonical
	// generation order whatever the setting (see internal/order).
	Reorder string
	// Layout selects the corner-array memory layout of the hot state:
	// "aos" (default — FX/FY and CMass/QEdge interleaved per element)
	// or "soa" (the paper's parallel slices, kept as the ablation).
	// Bitwise-identical either way.
	Layout string

	// ScatterAcc switches the acceleration kernel from the default
	// race-free gather back to the reference implementation's serial
	// corner-force→node scatter (paper-fidelity ablation of the OpenMP
	// data dependency).
	ScatterAcc bool

	// Overlap switches the two Lagrangian-step halo exchanges of
	// parallel runs to the phased schedule: sends are posted, the
	// interior portion of the dependent kernels runs while messages are
	// in flight, then the receives complete and the boundary band
	// finishes. Results are bitwise identical to the synchronous
	// schedule at every rank count (see DESIGN.md §10). Ignored by
	// serial runs, which have no halos. Incompatible with ScatterAcc,
	// whose whole-range scatter has no interior/boundary split.
	Overlap bool

	// NoFuse switches the Lagrangian step from the default fused
	// element passes (viscosity+force and the geometry→density→energy→
	// EOS chain each as one cache-tiled sweep) back to the paper's
	// one-kernel-per-phase structure. Fields are bitwise identical
	// either way (see DESIGN.md §13); unfused is the ablation that
	// reproduces the paper's Table II timer breakdown.
	NoFuse bool
	// FuseTile overrides the fused sweeps' tile width (elements per
	// body invocation); 0 derives it from the per-core cache budget.
	FuseTile int
	// Float32Aux stores the corner-mass and edge-viscosity auxiliary
	// streams as float32, halving their traffic in the force kernel —
	// an opt-in accuracy/bandwidth ablation; results are no longer
	// bitwise-comparable to float64 runs.
	Float32Aux bool

	// SedovEnergy overrides the Sedov blast energy when positive.
	SedovEnergy float64

	// Checkpoint, when set, names a restart-dump file written every
	// CheckpointEvery steps (default: end of run only). Resume, when
	// set, restores a prior dump before stepping. Snapshots are
	// partition-independent (format v2): a run checkpointed at N ranks
	// may resume at any rank count with any partitioner.
	Checkpoint      string
	CheckpointEvery int
	Resume          string
	// ResumeFrom restores an in-memory snapshot before stepping — the
	// serving daemon's preemption/resume path, which never touches the
	// filesystem. Takes precedence over Resume. Like a file dump it is
	// partition-independent: a leg preempted at N ranks may resume at
	// any rank count.
	ResumeFrom *checkpoint.Snapshot

	// Control, when non-nil, attaches a live supervisor handle to the
	// run: per-step progress and periodic obs snapshots flow out
	// through it, and Cancel/Preempt requests flow in (see Control).
	// A Control is single-use; make a fresh one per Run.
	Control *Control

	// Pool, when non-nil, is an externally owned warm worker pool the
	// run's kernels execute on instead of creating (and closing) its
	// own — the serving daemon's warm-fleet path, which amortises pool
	// spin-up across many small jobs. The caller keeps ownership and
	// must not drive the pool from elsewhere while the run is active.
	// Serial runs only (parallel ranks each own a pool); overrides
	// Threads with the pool's width.
	Pool *par.Pool

	// RollbackEvery is the cadence, in steps, of the rolling in-memory
	// snapshot backing step-level rollback-retry: on a timestep
	// collapse, a tangled element, or a non-finite field the run rolls
	// back (collectively, on parallel runs), halves the timestep cap
	// and retries. 0 selects the default (10); negative disables
	// rollback.
	RollbackEvery int
	// RetryBudget bounds how many rollback-retries a run may spend
	// before aborting with the underlying error. 0 selects the default
	// (3); negative disables retries.
	RetryBudget int

	// HistoryEvery records a StepRecord every n steps into
	// Result.History (0 = off). Serial runs only.
	HistoryEvery int

	// Trace, when set, is the prefix of per-rank Chrome trace_event
	// dumps (<prefix>.rank<id>.trace.json): one span per timer phase,
	// instant events for rollbacks, aborts and probe violations. Merge
	// and summarise with cmd/bleaf-trace; the merged file loads in
	// chrome://tracing or Perfetto. When empty (the default) no tracer
	// is attached and the steady-state step stays allocation-free.
	Trace string
	// Metrics, when set, names a metrics.json written at the end of
	// the run: the merged obs counter/gauge/histogram snapshot plus
	// run metadata and the per-kernel timer seconds.
	Metrics string
	// ProbeEvery samples the runtime invariant probes (total mass,
	// internal+kinetic energy against the conservation identity, and
	// finite-value sweeps) every n steps; 0 disables them. Samples and
	// violations land in Result.Probes and the obs metrics.
	ProbeEvery int
	// ProbeMaxDrift is the per-step relative conservation-drift
	// threshold above which a probe sample is flagged as a violation
	// (0 selects obs.DefaultMaxDriftPerStep).
	ProbeMaxDrift float64

	// Supervise configures the rank-supervision layer: the graded
	// recovery ladder (retry / replace / checkpoint-then-abort), online
	// elastic repartitioning, and the previously compile-time receive
	// timeout and dt-backoff knobs. nil keeps every default and leaves
	// the ladder off, which reproduces the pre-supervision behaviour
	// exactly.
	Supervise *SuperviseConfig

	// testDtMin overrides the minimum-timestep abort threshold; used
	// by failure-injection tests.
	testDtMin float64
	// testFault, when set, is called on every rank after each completed
	// step and may corrupt the state — fault injection for the
	// rollback-retry tests.
	testFault func(rank, step int, s *hydro.State)
	// testFaultPlan arms message-level fault injection in the typhon
	// layer of parallel runs.
	testFaultPlan *typhon.FaultPlan
	// testRecvTimeout bounds typhon Recv waits on parallel runs so
	// dropped-message faults are detected instead of deadlocking.
	testRecvTimeout time.Duration
}

func (c *Config) normalise() error {
	if c.Ranks == 0 {
		c.Ranks = 1
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.ALEFreq == 0 {
		c.ALEFreq = 1
	}
	if c.Partitioner == "" {
		c.Partitioner = "rcb"
	}
	if c.Ranks < 1 || c.Threads < 1 || c.ALEFreq < 1 {
		return fmt.Errorf("bookleaf: Ranks, Threads and ALEFreq must be >= 1")
	}
	switch c.ALE {
	case "", "eulerian", "smoothed":
	default:
		return fmt.Errorf("bookleaf: unknown ALE mode %q", c.ALE)
	}
	switch c.Hourglass {
	case "", "none", "filter", "subzonal":
	default:
		return fmt.Errorf("bookleaf: unknown hourglass control %q", c.Hourglass)
	}
	switch c.Partitioner {
	case "rcb", "metis":
	default:
		return fmt.Errorf("bookleaf: unknown partitioner %q", c.Partitioner)
	}
	if _, err := order.Parse(c.Reorder); err != nil {
		return fmt.Errorf("bookleaf: %w", err)
	}
	if _, err := hydro.ParseLayout(c.Layout); err != nil {
		return fmt.Errorf("bookleaf: %w", err)
	}
	if c.Overlap && c.ScatterAcc {
		return fmt.Errorf("bookleaf: Overlap requires the gather acceleration (ScatterAcc sweeps all elements at once and has no interior/boundary split)")
	}
	if c.Pool != nil && c.Ranks > 1 {
		return fmt.Errorf("bookleaf: Pool is serial-only (parallel ranks each own a pool)")
	}
	if c.Pool != nil {
		c.Threads = c.Pool.Threads
		if c.Threads < 1 {
			c.Threads = 1
		}
	}
	return nil
}

// Validate normalises a copy of the config and reports whether Run
// would accept its shape (problem selection is still checked at run
// time). The serving daemon calls it at admission so a malformed deck
// is a 400, not a failed job.
func (c Config) Validate() error {
	return (&c).normalise()
}

// SuperviseConfig configures the rank-supervision layer (deck section
// [supervise]). Like the rest of Config, zero values select defaults;
// for the budgets, negative disables (the Config idiom RetryBudget
// already uses).
type SuperviseConfig struct {
	// Enabled turns the recovery ladder on for parallel runs: transient
	// faults retry with backoff, persistent rank-local faults replace
	// the rank from its last in-memory Memento, fatal faults checkpoint
	// then abort. Off, any epoch fault is fatal (today's behaviour);
	// the RecvTimeout and DtBackoff knobs below apply regardless.
	Enabled bool

	// RetryBudget bounds supervised transient retries (0 = default 2,
	// negative = none). Distinct from Config.RetryBudget, which bounds
	// the collective rollback-retries inside an epoch.
	RetryBudget int
	// ReplaceBudget bounds rank replacements (0 = default 1, negative =
	// none).
	ReplaceBudget int
	// PersistAfter is the per-rank attributable-fault count at which a
	// transient classification escalates to rank-persistent (0 =
	// default 2).
	PersistAfter int

	// BackoffBase is the first retry's backoff, doubling per retry up
	// to BackoffMax (0 base = immediate retry, today's behaviour;
	// 0 max = default 2s). BackoffJitter in [0,1] is the randomised
	// fraction of each backoff.
	BackoffBase   time.Duration
	BackoffMax    time.Duration
	BackoffJitter float64

	// RecvTimeout bounds every typhon Recv wait (0 = wait forever,
	// today's behaviour). Required for drop faults to be detected.
	RecvTimeout time.Duration
	// DtBackoff is the factor the timestep cap is divided by on each
	// rollback (0 = default 2, today's compile-time constant).
	DtBackoff float64

	// RepartCheckEvery is the step cadence of the load-imbalance check
	// (0 = monitor off); RepartThreshold the max/mean per-rank work
	// ratio that triggers an online repartition (0 = default 1.5);
	// RepartMinGap the minimum steps between triggered repartitions
	// (0 = default 10).
	RepartCheckEvery int
	RepartThreshold  float64
	RepartMinGap     int
	// RepartAtStep forces one repartition at the given step (0 = none).
	// RepartRanks, when positive, is the rank count after the next
	// repartition; RanksMax caps it (0 = no cap).
	RepartAtStep int
	RepartRanks  int
	RanksMax     int

	// Seed seeds the deterministic backoff-jitter generator (0 = 1).
	Seed uint64
}

// supervisePolicy resolves Config.Supervise (and the test-only recv
// timeout) into a validated supervise.Policy.
func (c *Config) supervisePolicy() (supervise.Policy, error) {
	pol := supervise.DefaultPolicy()
	pol.RecvTimeout = c.testRecvTimeout
	sc := c.Supervise
	if sc == nil {
		return pol, nil
	}
	resolve := func(v, def int) int {
		if v < 0 {
			return 0
		}
		if v == 0 {
			return def
		}
		return v
	}
	pol.Enabled = sc.Enabled
	pol.RetryBudget = resolve(sc.RetryBudget, pol.RetryBudget)
	pol.ReplaceBudget = resolve(sc.ReplaceBudget, pol.ReplaceBudget)
	pol.PersistAfter = resolve(sc.PersistAfter, pol.PersistAfter)
	pol.BackoffBase = sc.BackoffBase
	if sc.BackoffMax != 0 {
		pol.BackoffMax = sc.BackoffMax
	}
	pol.BackoffJitter = sc.BackoffJitter
	if sc.RecvTimeout != 0 {
		pol.RecvTimeout = sc.RecvTimeout
	}
	if sc.DtBackoff != 0 {
		pol.DtBackoff = sc.DtBackoff
	}
	pol.RepartCheckEvery = sc.RepartCheckEvery
	if sc.RepartThreshold != 0 {
		pol.RepartThreshold = sc.RepartThreshold
	}
	if sc.RepartMinGap != 0 {
		pol.RepartMinGap = sc.RepartMinGap
	}
	pol.RepartAtStep = sc.RepartAtStep
	pol.RepartRanks = sc.RepartRanks
	pol.RanksMax = sc.RanksMax
	pol.Seed = sc.Seed
	if err := pol.Validate(); err != nil {
		return pol, fmt.Errorf("bookleaf: %w", err)
	}
	return pol, nil
}

// rollbackEvery resolves the rolling-snapshot cadence: 0 = default 10,
// negative = disabled.
func (c *Config) rollbackEvery() int {
	if c.RollbackEvery < 0 {
		return 0
	}
	if c.RollbackEvery == 0 {
		return 10
	}
	return c.RollbackEvery
}

// retryBudget resolves the rollback-retry budget: 0 = default 3,
// negative = disabled.
func (c *Config) retryBudget() int {
	if c.RetryBudget < 0 {
		return 0
	}
	if c.RetryBudget == 0 {
		return 3
	}
	return c.RetryBudget
}

func (c *Config) aleOptions() *ale.Options {
	switch c.ALE {
	case "eulerian":
		return &ale.Options{Mode: ale.Eulerian, FirstOrder: c.FirstOrderRemap}
	case "smoothed":
		return &ale.Options{Mode: ale.Smoothed, SmoothWeight: 0.5, FirstOrder: c.FirstOrderRemap}
	}
	return nil
}

func (c *Config) applyOverrides(opt *hydro.Options) {
	switch c.Hourglass {
	case "none":
		opt.Hourglass = hydro.HGNone
	case "filter":
		opt.Hourglass = hydro.HGFilter
	case "subzonal":
		opt.Hourglass = hydro.HGSubzonal
	}
	opt.ScatterAcc = c.ScatterAcc
	opt.Fuse = !c.NoFuse
	opt.FuseTile = c.FuseTile
	opt.Float32Aux = c.Float32Aux
	// Layout was validated by normalise(); the zero value (AoS) covers
	// the empty string.
	opt.Layout, _ = hydro.ParseLayout(c.Layout)
	if c.testDtMin > 0 {
		opt.DtMin = c.testDtMin
	}
}

// Result is the outcome of a run: global final fields, per-kernel
// timings (slowest rank, i.e. the bulk-synchronous wall estimate) and
// conservation audits.
type Result struct {
	Problem        string
	NEl, NNd       int
	Ranks, Threads int

	Steps int
	Time  float64

	// Timers holds per-kernel seconds (max across ranks); TimerSum
	// the rank-summed CPU seconds; Calls the invocation counts.
	Timers   map[string]float64
	TimerSum map[string]float64
	Calls    map[string]int64

	// Final global fields (element- and node-indexed on the global
	// mesh).
	Rho, Ein, P []float64
	U, V        []float64
	X, Y        []float64

	// Mesh is the global problem mesh (initial coordinates).
	Mesh *mesh.Mesh

	// Conservation audit.
	E0, EFinal, ExternalWork float64
	// FloorEnergy is energy injected by the negative-energy floor
	// (zero on well-resolved problems).
	FloorEnergy      float64
	Mass0, MassFinal float64

	// TEnd actually used, and the problem gamma (for reference
	// solutions).
	TEnd, Gamma float64
	SedovEnergy float64

	// CommMsgs and CommWords are the total messages and float64 words
	// sent through the Typhon layer (zero for serial runs).
	CommMsgs, CommWords int64

	// Rollbacks counts the rollback-retries the run spent recovering
	// from transient failures (zero on a clean run).
	Rollbacks int

	// Supervision outcomes (zero unless Config.Supervise enabled the
	// recovery ladder): epoch-level transient retries, rank
	// replacements, and online repartitions.
	SupRetries   int
	Replacements int
	Repartitions int
	// FinalRanks is the rank count at the end of the run — it differs
	// from Ranks after an elastic repartition changed the fleet size.
	FinalRanks int

	// History holds periodic step records when Config.HistoryEvery is
	// set.
	History []StepRecord

	// Obs is the merged observability snapshot: counters summed across
	// ranks (so counters such as steps_total and dt_cause_* are
	// rank-summed, like TimerSum), gauges from the rank that published
	// them, histograms merged. Always non-nil after a successful run.
	Obs *obs.Snapshot

	// Probes holds the invariant-probe samples (conservation records
	// from rank 0, plus non-finite notes from any rank) when
	// Config.ProbeEvery is set; ProbeViolations counts flagged samples
	// across all ranks.
	Probes          []obs.ProbeRecord
	ProbeViolations int
}

// StepRecord is one entry of the optional step history: the quantities
// BookLeaf's step log prints.
type StepRecord struct {
	Step    int
	Time    float64
	Dt      float64
	Energy  float64
	Kinetic float64
}

// EnergyDrift returns |E - E0 - W - F| / max(E0, 1e-300), the
// conservation defect accounting for piston work W and floor energy F.
func (r *Result) EnergyDrift() float64 {
	return math.Abs(r.EFinal-r.E0-r.ExternalWork-r.FloorEnergy) / math.Max(math.Abs(r.E0), 1e-300)
}

// Run executes the configured problem to completion.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	if cfg.Ranks > 1 {
		return runParallel(cfg)
	}
	return runSerial(cfg)
}

// loadSnapshot reads and validates a resume dump against the run's
// identity and global mesh sizes. Drivers call it before any ranks
// spawn, so a missing, truncated or incompatible dump fails the run
// with a clear error instead of a mid-flight collapse.
func loadSnapshot(path, problem string, nx, ny, nel, nnd int) (*checkpoint.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	defer f.Close()
	sn, err := checkpoint.Read(f)
	if err != nil {
		return nil, fmt.Errorf("resume %s: %w", path, err)
	}
	if err := sn.Validate(problem, nx, ny, nel, nnd); err != nil {
		return nil, fmt.Errorf("resume %s: %w", path, err)
	}
	return sn, nil
}

// resumeSnapshot resolves the run's resume source: the in-memory
// snapshot when set (the preemption/resume path), else the Resume file,
// else nil. Either way the snapshot is validated against the run's
// identity before any state is touched.
func (c *Config) resumeSnapshot(nel, nnd int) (*checkpoint.Snapshot, error) {
	if c.ResumeFrom != nil {
		if err := c.ResumeFrom.Validate(c.Problem, c.NX, c.NY, nel, nnd); err != nil {
			return nil, fmt.Errorf("resume: %w", err)
		}
		return c.ResumeFrom, nil
	}
	if c.Resume == "" {
		return nil, nil
	}
	return loadSnapshot(c.Resume, c.Problem, c.NX, c.NY, nel, nnd)
}

// dtCauseCounters pre-resolves one counter per timestep-limiting cause
// so the per-step publish is a single indexed add.
func dtCauseCounters(reg *obs.Registry) [5]*obs.Counter {
	var out [5]*obs.Counter
	for c := hydro.DtCauseInitial; c <= hydro.DtCauseMax; c++ {
		out[c] = reg.Counter("dt_cause_" + c.String())
	}
	return out
}

// writeMetricsFile emits the machine-readable metrics.json for a
// completed run: run identity, the merged obs snapshot, and the
// per-kernel timer seconds.
func writeMetricsFile(path string, cfg Config, res *Result, wallSeconds float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	mf := &obs.MetricsFile{
		Meta: obs.Meta{
			Problem: res.Problem, NX: cfg.NX, NY: cfg.NY,
			Ranks: res.Ranks, Threads: res.Threads, Steps: res.Steps,
			WallSeconds: wallSeconds,
		},
		Counters:   res.Obs.Counters,
		Gauges:     res.Obs.Gauges,
		Histograms: res.Obs.Histograms,
		Timers:     res.Timers,
	}
	if err := obs.WriteMetrics(f, mf); err != nil {
		f.Close()
		return fmt.Errorf("metrics %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metrics %s: %w", path, err)
	}
	return nil
}

// writeSnapshotFile writes a snapshot dump, surfacing close errors
// (a checkpoint that did not reach the disk is not a checkpoint).
func writeSnapshotFile(path string, sn *checkpoint.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := sn.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return nil
}

// scatterCanon copies src into a fresh slice, permuted to canonical
// generation order through gids (src[i] lands at gids[i]). A nil gids
// means the mesh was never renumbered and src is already canonical.
func scatterCanon(src []float64, gids []int) []float64 {
	if gids == nil {
		return append([]float64(nil), src...)
	}
	dst := make([]float64, len(src))
	for i, g := range gids {
		dst[g] = src[i]
	}
	return dst
}

func runSerial(cfg Config) (*Result, error) {
	pol, err := cfg.supervisePolicy()
	if err != nil {
		return nil, err
	}
	p, err := setup.ByName(cfg.Problem, cfg.NX, cfg.NY, cfg.SedovEnergy)
	if err != nil {
		return nil, err
	}
	cfg.applyOverrides(&p.Opt)
	canon := p.Mesh
	if kind, _ := order.Parse(cfg.Reorder); kind != order.None {
		// Renumber the mesh for locality; results, checkpoints and
		// golden metrics stay in canonical generation order via the
		// GlobalEl/GlobalNd maps the reordered mesh carries.
		if p.Mesh, err = order.Reorder(p.Mesh, kind); err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}
	s, err := p.NewState()
	if err != nil {
		return nil, err
	}
	if cfg.Pool != nil {
		// Warm-fleet lease: the caller owns the pool and its lifecycle.
		s.Pool = cfg.Pool
	} else {
		s.Pool = par.New(cfg.Threads)
		defer s.Pool.Close()
	}

	tEnd := p.TEnd
	if cfg.TEnd > 0 {
		tEnd = cfg.TEnd
	}
	var remap *ale.Remapper
	if a := cfg.aleOptions(); a != nil {
		remap = ale.NewRemapper(*a, s)
	}

	// Initial audits come from the fresh t=0 state, before any resume
	// restore: the snapshot carries the external-work and floor-energy
	// accumulators from t=0, so the drift identity (and bitwise parity
	// with an uninterrupted run) needs the t=0 anchors. The parallel
	// driver computes them the same way.
	e0, mass0 := s.TotalEnergy(), s.TotalMass()

	if snap, err := cfg.resumeSnapshot(p.Mesh.NEl, p.Mesh.NNd); err != nil {
		return nil, fmt.Errorf("bookleaf: %w", err)
	} else if snap != nil {
		if err := snap.Restore(s, cfg.Problem, cfg.NX, cfg.NY); err != nil {
			return nil, fmt.Errorf("bookleaf: resume: %w", err)
		}
	}

	writeCheckpoint := func() error {
		return writeSnapshotFile(cfg.Checkpoint, checkpoint.Capture(s, cfg.Problem, cfg.NX, cfg.NY))
	}

	start := time.Now()
	tm := timers.NewSet()
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if cfg.Trace != "" {
		tracer = obs.NewTracer(0, start)
		tm.SetSink(tracer)
	}
	var probe *obs.InvariantProbe
	if cfg.ProbeEvery > 0 {
		probe = obs.NewInvariantProbe(cfg.ProbeEvery, cfg.ProbeMaxDrift, reg)
	}
	ctrSteps := reg.Counter("steps_total")
	ctrRemaps := reg.Counter("remaps_total")
	ctrRollbacks := reg.Counter("rollbacks_total")
	dtCause := dtCauseCounters(reg)
	dtCap := math.Inf(1)
	hooks := &hydro.Hooks{
		ReduceDt: func(dt float64, e int) (float64, int) {
			if dt > dtCap {
				dt = dtCap
			}
			if s.Time+dt > tEnd {
				dt = tEnd - s.Time
			}
			return dt, e
		},
	}
	res := &Result{
		Problem: p.Name, Ranks: 1, FinalRanks: 1, Threads: cfg.Threads,
		NEl: p.Mesh.NEl, NNd: p.Mesh.NNd,
		E0: e0, Mass0: mass0,
		// Result fields are scattered back to canonical generation
		// order below, so they present on the canonical mesh.
		Mesh: canon, TEnd: tEnd, Gamma: p.Gamma, SedovEnergy: p.SedovEnergy,
	}
	rollEvery := cfg.rollbackEvery()
	budget := cfg.retryBudget()
	if rollEvery == 0 {
		budget = 0
	}
	var roll hydro.Memento
	if budget > 0 {
		s.Save(&roll) // cover steps before the first cadence point
	}
	ctl := cfg.Control
	for s.Time < tEnd-1e-12 {
		if cfg.MaxSteps > 0 && s.StepCount >= cfg.MaxSteps {
			break
		}
		// Control requests are honoured at step boundaries, so a
		// preempted leg restarts exactly where an uninterrupted run
		// would have stepped next.
		switch ctl.poll() {
		case ctlCancel:
			return nil, fmt.Errorf("bookleaf: step %d (t=%v): %w", s.StepCount, s.Time, ErrCanceled)
		case ctlPreempt:
			return nil, &PreemptedError{
				Snapshot: checkpoint.Capture(s, cfg.Problem, cfg.NX, cfg.NY),
				Step:     s.StepCount, Time: s.Time,
				Obs: reg.Snapshot(),
			}
		}
		if budget > 0 && s.StepCount%rollEvery == 0 {
			s.Save(&roll)
		}
		stepErr := func() error {
			if _, err := s.Step(tm, hooks); err != nil {
				return err
			}
			if remap != nil && s.StepCount%cfg.ALEFreq == 0 {
				tm.Start(hydro.TimerALE)
				err := remap.Apply(s, tm, nil)
				tm.Stop(hydro.TimerALE)
				if err != nil {
					return fmt.Errorf("remap: %w", err)
				}
				ctrRemaps.Inc()
			}
			if cfg.testFault != nil {
				cfg.testFault(0, s.StepCount, s)
			}
			return s.CheckFinite()
		}()
		if stepErr != nil {
			if budget > 0 && hydro.Retryable(stepErr) {
				// The health sentinel routes its finding through the
				// probe so corruption is flagged even when the
				// rollback below erases the corrupted state.
				var nf *hydro.ErrNonFinite
				if errors.As(stepErr, &nf) {
					probe.NoteNonFinite(s.StepCount, s.Time)
				}
				budget--
				res.Rollbacks++
				ctrRollbacks.Inc()
				tracer.Instant("rollback", nil)
				s.Load(&roll)
				// Back the timestep cap off below the last dt taken
				// from the restored point (factor [supervise]
				// dt_backoff, default 2); GetDt will re-grow it via
				// DtGrowth once steps succeed again.
				dtCap = math.Min(dtCap, s.DtPrev) / pol.DtBackoff
				continue
			}
			return nil, fmt.Errorf("bookleaf: step %d (t=%v): %w", s.StepCount, s.Time, stepErr)
		}
		ctrSteps.Inc()
		dtCause[s.DtCause].Inc()
		ctl.noteProgress(s.StepCount, s.Time, tEnd)
		if ctl.snapshotDue(s.StepCount) {
			ctl.publishMetrics(reg.Snapshot())
		}
		if probe.Due(s.StepCount) {
			rec := probe.Sample(s.StepCount, s.Time,
				s.TotalMass(), s.TotalEnergy(), s.ExternalWork, s.FloorEnergy, true)
			if rec.Violation {
				tracer.Instant("probe_violation", nil)
			}
		}
		if !math.IsInf(dtCap, 1) {
			dtCap *= s.Opt.DtGrowth
		}
		if cfg.Checkpoint != "" && cfg.CheckpointEvery > 0 && s.StepCount%cfg.CheckpointEvery == 0 {
			if err := writeCheckpoint(); err != nil {
				return nil, fmt.Errorf("bookleaf: %w", err)
			}
		}
		if cfg.HistoryEvery > 0 && s.StepCount%cfg.HistoryEvery == 0 {
			res.History = append(res.History, StepRecord{
				Step: s.StepCount, Time: s.Time, Dt: s.DtPrev,
				Energy: s.TotalEnergy(), Kinetic: s.KineticEnergy(),
			})
		}
	}
	if cfg.Checkpoint != "" {
		if err := writeCheckpoint(); err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}
	res.Steps = s.StepCount
	res.Time = s.Time
	res.Timers = tm.Snapshot()
	res.TimerSum = tm.Snapshot()
	res.Calls = map[string]int64{}
	for _, n := range tm.Names() {
		res.Calls[n] = tm.Count(n)
	}
	// Present fields in canonical generation order: on a reordered mesh
	// the permutation maps scatter each local value to its canonical
	// slot; with no reordering they are plain copies.
	res.Rho = scatterCanon(s.Rho, p.Mesh.GlobalEl)
	res.Ein = scatterCanon(s.Ein, p.Mesh.GlobalEl)
	res.P = scatterCanon(s.P, p.Mesh.GlobalEl)
	res.U = scatterCanon(s.U, p.Mesh.GlobalNd)
	res.V = scatterCanon(s.V, p.Mesh.GlobalNd)
	res.X = scatterCanon(s.X, p.Mesh.GlobalNd)
	res.Y = scatterCanon(s.Y, p.Mesh.GlobalNd)
	res.EFinal = s.TotalEnergy()
	res.ExternalWork = s.ExternalWork
	res.FloorEnergy = s.FloorEnergy
	res.MassFinal = s.TotalMass()
	if remap != nil {
		// ALESTEP phase breakdown as counters, mirroring the parallel
		// driver's per-rank publication.
		reg.Counter("ale_getmesh_ns").Add(tm.Elapsed("alegetmesh").Nanoseconds())
		reg.Counter("ale_getfvol_ns").Add(tm.Elapsed("alegetfvol").Nanoseconds())
		reg.Counter("ale_advect_ns").Add(tm.Elapsed("aleadvect").Nanoseconds())
		reg.Counter("ale_update_ns").Add(tm.Elapsed("aleupdate").Nanoseconds())
	}
	res.Obs = reg.Snapshot()
	if probe != nil {
		res.Probes = probe.Records
		res.ProbeViolations = probe.Violations
	}
	if tracer != nil {
		if err := tracer.WriteFile(cfg.Trace); err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}
	if cfg.Metrics != "" {
		if err := writeMetricsFile(cfg.Metrics, cfg, res, time.Since(start).Seconds()); err != nil {
			return nil, fmt.Errorf("bookleaf: %w", err)
		}
	}
	return res, nil
}
