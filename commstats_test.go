package bookleaf_test

import (
	"testing"

	"bookleaf"
)

func TestCommStatsReported(t *testing.T) {
	serial := run(t, bookleaf.Config{Problem: "sod", NX: 32, NY: 4, MaxSteps: 10})
	if serial.CommMsgs != 0 || serial.CommWords != 0 {
		t.Fatalf("serial run reported traffic: %d msgs %d words", serial.CommMsgs, serial.CommWords)
	}
	par := run(t, bookleaf.Config{Problem: "sod", NX: 32, NY: 4, MaxSteps: 10, Ranks: 2})
	if par.CommMsgs == 0 || par.CommWords == 0 {
		t.Fatal("parallel run reported no traffic")
	}
	// Two halo exchanges per step, one message per neighbour pair per
	// exchange, two ranks (one neighbour each): 4 messages per step.
	want := int64(4 * par.Steps)
	if par.CommMsgs != want {
		t.Fatalf("msgs = %d, want %d (2 exchanges x 2 ranks x %d steps)", par.CommMsgs, want, par.Steps)
	}
}

func TestCommVolumeScalesWithRanks(t *testing.T) {
	// More ranks -> more partition surface -> more traffic.
	r2 := run(t, bookleaf.Config{Problem: "noh", NX: 24, NY: 24, MaxSteps: 15, Ranks: 2})
	r4 := run(t, bookleaf.Config{Problem: "noh", NX: 24, NY: 24, MaxSteps: 15, Ranks: 4})
	if r4.CommWords <= r2.CommWords {
		t.Fatalf("traffic did not grow with ranks: %d (2) vs %d (4)", r2.CommWords, r4.CommWords)
	}
}
