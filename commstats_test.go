package bookleaf_test

import (
	"testing"

	"bookleaf"
	"bookleaf/internal/partition"
	"bookleaf/internal/setup"
)

// expectedHaloMsgsPerStep reproduces the driver's partitioning for cfg
// and returns how many element-halo and node-halo messages one
// exchange of each kind costs: one message per populated send list,
// summed over ranks. Deriving the count from the partitioner (rather
// than hard-coding "4 messages per step") keeps the test honest for
// any rank count and for both partitioners, whose boundary shapes —
// and hence neighbour counts — differ.
func expectedHaloMsgsPerStep(t *testing.T, cfg bookleaf.Config) (el, nd int64) {
	t.Helper()
	p, err := setup.ByName(cfg.Problem, cfg.NX, cfg.NY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var part []int
	switch cfg.Partitioner {
	case "metis":
		part, err = partition.MultilevelMesh(p.Mesh, cfg.Ranks)
	default:
		part, err = partition.RCBMesh(p.Mesh, cfg.Ranks)
	}
	if err != nil {
		t.Fatal(err)
	}
	subs, err := partition.Split(p.Mesh, part, cfg.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		el += int64(len(sub.ElSend))
		nd += int64(len(sub.NdSend))
	}
	return el, nd
}

func TestCommStatsReported(t *testing.T) {
	serial := run(t, bookleaf.Config{Problem: "sod", NX: 32, NY: 4, MaxSteps: 10})
	if serial.CommMsgs != 0 || serial.CommWords != 0 {
		t.Fatalf("serial run reported traffic: %d msgs %d words", serial.CommMsgs, serial.CommWords)
	}

	// The Lagrangian step does one element-halo exchange (forces
	// phase) and one node-halo exchange (velocities phase) per step,
	// so the total message count follows from the partitioner's send
	// lists alone. Check it for both partitioners at rank counts where
	// their boundary topologies differ.
	cases := []bookleaf.Config{
		{Problem: "sod", NX: 32, NY: 4, MaxSteps: 10, Ranks: 2},
		{Problem: "sod", NX: 32, NY: 4, MaxSteps: 10, Ranks: 4, Partitioner: "metis"},
		{Problem: "noh", NX: 16, NY: 16, MaxSteps: 10, Ranks: 4},
		{Problem: "noh", NX: 16, NY: 16, MaxSteps: 10, Ranks: 4, Partitioner: "metis"},
	}
	for _, cfg := range cases {
		name := cfg.Problem + "-" + cfg.Partitioner
		if cfg.Partitioner == "" {
			name = cfg.Problem + "-rcb"
		}
		t.Run(name, func(t *testing.T) {
			el, nd := expectedHaloMsgsPerStep(t, cfg)
			if el == 0 || nd == 0 {
				t.Fatalf("partition has no halo (el=%d nd=%d); test is vacuous", el, nd)
			}
			par := run(t, cfg)
			steps := int64(par.Steps)
			if want := (el + nd) * steps; par.CommMsgs != want {
				t.Fatalf("msgs = %d, want %d (%d el + %d nd per step x %d steps)",
					par.CommMsgs, want, el, nd, steps)
			}
			// The obs phase counters must show the same split.
			if got := par.Obs.Counters["halo_msgs_forces"]; got != el*steps {
				t.Fatalf("halo_msgs_forces = %d, want %d", got, el*steps)
			}
			if got := par.Obs.Counters["halo_msgs_velocities"]; got != nd*steps {
				t.Fatalf("halo_msgs_velocities = %d, want %d", got, nd*steps)
			}
		})
	}
}

func TestCommVolumeScalesWithRanks(t *testing.T) {
	// More ranks -> more partition surface -> more traffic.
	r2 := run(t, bookleaf.Config{Problem: "noh", NX: 24, NY: 24, MaxSteps: 15, Ranks: 2})
	r4 := run(t, bookleaf.Config{Problem: "noh", NX: 24, NY: 24, MaxSteps: 15, Ranks: 4})
	if r4.CommWords <= r2.CommWords {
		t.Fatalf("traffic did not grow with ranks: %d (2) vs %d (4)", r2.CommWords, r4.CommWords)
	}
}
